//! # la-verify — scaled residual checks
//!
//! The acceptance tests LAPACK's own test suite applies, including the
//! exact ratio the paper's Appendix F prints:
//!
//! ```text
//! ratio = || B - AX || / ( || A ||*|| X ||*eps )
//! ```
//!
//! All ratios are returned in units of machine epsilon of the scalar's
//! associated real type; a ratio below ~30 (LAPACK's `THRESH`) indicates
//! a backward-stable result.

#![warn(missing_docs)]
// Fortran-convention numerics: indexed loops over strided buffers, long
// LAPACK argument lists and in-place `x = x op y` updates are the house
// style here (they mirror the reference BLAS/LAPACK routines line for
// line), so the corresponding pedantic lints are disabled crate-wide.
#![allow(
    clippy::assign_op_pattern,
    clippy::too_many_arguments,
    clippy::type_complexity,
    clippy::needless_range_loop,
    clippy::manual_memcpy,
    clippy::manual_swap
)]

use la_blas::gemm;
use la_core::{Mat, Norm, RealScalar, Scalar, Trans};

/// 1-norm of a column-major matrix slice.
fn one_norm<T: Scalar>(m: usize, n: usize, a: &[T], lda: usize) -> T::Real {
    let mut v = T::Real::zero();
    for j in 0..n {
        let mut s = T::Real::zero();
        for i in 0..m {
            s += a[i + j * lda].abs();
        }
        v = v.maxr(s);
    }
    v
}

/// The Appendix-F solve ratio `‖B − A·X‖₁ / (‖A‖₁·‖X‖₁·ε)` on raw
/// column-major buffers.
pub fn solve_ratio_raw<T: Scalar>(
    n: usize,
    nrhs: usize,
    a: &[T],
    lda: usize,
    x: &[T],
    ldx: usize,
    b: &[T],
    ldb: usize,
) -> T::Real {
    let eps = T::eps();
    if n == 0 || nrhs == 0 {
        return T::Real::zero();
    }
    // R := B − A·X.
    let mut r = vec![T::zero(); n * nrhs];
    for j in 0..nrhs {
        for i in 0..n {
            r[i + j * n] = b[i + j * ldb];
        }
    }
    gemm(
        Trans::No,
        Trans::No,
        n,
        nrhs,
        n,
        -T::one(),
        a,
        lda,
        x,
        ldx,
        T::one(),
        &mut r,
        n,
    );
    let rnorm = one_norm(n, nrhs, &r, n);
    let anorm = one_norm(n, n, a, lda);
    let xnorm = one_norm(n, nrhs, x, ldx);
    if anorm.is_zero() || xnorm.is_zero() {
        return if rnorm.is_zero() {
            T::Real::zero()
        } else {
            T::Real::one() / eps
        };
    }
    rnorm / (anorm * xnorm * eps)
}

/// [`solve_ratio_raw`] on [`Mat`] operands: the `A·X = B` residual with
/// `A` the original matrix, `x` the computed solution, `b` the original
/// right-hand side.
pub fn solve_ratio<T: Scalar>(a: &Mat<T>, x: &Mat<T>, b: &Mat<T>) -> T::Real {
    assert!(a.is_square());
    assert_eq!(a.nrows(), x.nrows());
    assert_eq!(x.shape(), b.shape());
    solve_ratio_raw(
        a.nrows(),
        x.ncols(),
        a.as_slice(),
        a.lda(),
        x.as_slice(),
        x.lda(),
        b.as_slice(),
        b.lda(),
    )
}

/// LU factorization residual (`xGET01`):
/// `‖P·L·U − A‖₁ / (n·‖A‖₁·ε)` given the factor output and pivots.
pub fn lu_ratio<T: Scalar>(a_orig: &Mat<T>, factors: &Mat<T>, ipiv: &[i32]) -> T::Real {
    let n = a_orig.nrows();
    let eps = T::eps();
    if n == 0 {
        return T::Real::zero();
    }
    // Build L and U, multiply, apply P.
    let l = Mat::<T>::from_fn(n, n, |i, j| {
        use core::cmp::Ordering;
        match i.cmp(&j) {
            Ordering::Greater => factors[(i, j)],
            Ordering::Equal => T::one(),
            Ordering::Less => T::zero(),
        }
    });
    let u = Mat::<T>::from_fn(
        n,
        n,
        |i, j| if i <= j { factors[(i, j)] } else { T::zero() },
    );
    let mut lu = vec![T::zero(); n * n];
    gemm(
        Trans::No,
        Trans::No,
        n,
        n,
        n,
        T::one(),
        l.as_slice(),
        n,
        u.as_slice(),
        n,
        T::zero(),
        &mut lu,
        n,
    );
    // P·(L·U): apply the interchanges in reverse.
    for k in (0..n).rev() {
        let p = (ipiv[k] - 1) as usize;
        if p != k {
            for j in 0..n {
                lu.swap(k + j * n, p + j * n);
            }
        }
    }
    let mut diff = T::Real::zero();
    let anorm = one_norm(n, n, a_orig.as_slice(), n);
    for j in 0..n {
        let mut s = T::Real::zero();
        for i in 0..n {
            s += (lu[i + j * n] - a_orig[(i, j)]).abs();
        }
        diff = diff.maxr(s);
    }
    diff / (T::Real::from_usize(n) * anorm.maxr(T::Real::sfmin()) * eps)
}

/// Orthogonality/unitarity residual (`xORT01`): `‖QᴴQ − I‖₁ / (n·ε)` for
/// an `m × n` matrix with (supposedly) orthonormal columns.
pub fn orthogonality_ratio<T: Scalar>(m: usize, n: usize, q: &[T], ldq: usize) -> T::Real {
    let eps = T::eps();
    if n == 0 {
        return T::Real::zero();
    }
    let mut g = vec![T::zero(); n * n];
    gemm(
        Trans::ConjTrans,
        Trans::No,
        n,
        n,
        m,
        T::one(),
        q,
        ldq,
        q,
        ldq,
        T::zero(),
        &mut g,
        n,
    );
    for i in 0..n {
        g[i + i * n] -= T::one();
    }
    one_norm(n, n, &g, n) / (T::Real::from_usize(n) * eps)
}

/// Hermitian eigendecomposition residual (`xSYT21`-style):
/// `‖A·Z − Z·diag(w)‖₁ / (n·‖A‖₁·ε)`.
pub fn eig_ratio<T: Scalar>(a: &Mat<T>, z: &Mat<T>, w: &[T::Real]) -> T::Real {
    let n = a.nrows();
    let eps = T::eps();
    if n == 0 {
        return T::Real::zero();
    }
    let mut az = vec![T::zero(); n * n];
    gemm(
        Trans::No,
        Trans::No,
        n,
        n,
        n,
        T::one(),
        a.as_slice(),
        n,
        z.as_slice(),
        n,
        T::zero(),
        &mut az,
        n,
    );
    let mut diff = T::Real::zero();
    for j in 0..n {
        let mut s = T::Real::zero();
        for i in 0..n {
            s += (az[i + j * n] - z[(i, j)].mul_real(w[j])).abs();
        }
        diff = diff.maxr(s);
    }
    let anorm = {
        let mut v = T::Real::zero();
        for j in 0..n {
            let mut s = T::Real::zero();
            for i in 0..n {
                s += a[(i, j)].abs();
            }
            v = v.maxr(s);
        }
        v
    };
    diff / (T::Real::from_usize(n) * anorm.maxr(T::Real::one()) * eps)
}

/// SVD reconstruction residual (`xBDT01`-style):
/// `‖A − U·diag(s)·VT‖₁ / (max(m,n)·‖A‖₁·ε)`.
pub fn svd_ratio<T: Scalar>(
    m: usize,
    n: usize,
    a: &[T],
    lda: usize,
    s: &[T::Real],
    u: &[T],
    ldu: usize,
    vt: &[T],
    ldvt: usize,
) -> T::Real {
    let k = m.min(n);
    let eps = T::eps();
    if k == 0 {
        return T::Real::zero();
    }
    let mut us = vec![T::zero(); m * k];
    for j in 0..k {
        for i in 0..m {
            us[i + j * m] = u[i + j * ldu].mul_real(s[j]);
        }
    }
    let mut rec = vec![T::zero(); m * n];
    gemm(
        Trans::No,
        Trans::No,
        m,
        n,
        k,
        T::one(),
        &us,
        m,
        vt,
        ldvt,
        T::zero(),
        &mut rec,
        m,
    );
    let mut diff = T::Real::zero();
    for j in 0..n {
        let mut sum = T::Real::zero();
        for i in 0..m {
            sum += (rec[i + j * m] - a[i + j * lda]).abs();
        }
        diff = diff.maxr(sum);
    }
    let anorm = one_norm(m, n, a, lda);
    diff / (T::Real::from_usize(m.max(n)) * anorm.maxr(T::Real::one()) * eps)
}

/// Least-squares optimality residual: `‖Aᴴ(B − A·X)‖₁ / (‖A‖₁²·‖X‖₁·ε·max(m,n))`
/// (zero gradient of the normal equations).
pub fn ls_ratio<T: Scalar>(
    m: usize,
    n: usize,
    nrhs: usize,
    a: &[T],
    lda: usize,
    x: &[T],
    ldx: usize,
    b: &[T],
    ldb: usize,
) -> T::Real {
    let eps = T::eps();
    let mut r = vec![T::zero(); m * nrhs];
    for j in 0..nrhs {
        for i in 0..m {
            r[i + j * m] = b[i + j * ldb];
        }
    }
    gemm(
        Trans::No,
        Trans::No,
        m,
        nrhs,
        n,
        -T::one(),
        a,
        lda,
        x,
        ldx,
        T::one(),
        &mut r,
        m,
    );
    let mut g = vec![T::zero(); n * nrhs];
    gemm(
        Trans::ConjTrans,
        Trans::No,
        n,
        nrhs,
        m,
        T::one(),
        a,
        lda,
        &r,
        m,
        T::zero(),
        &mut g,
        n,
    );
    let gnorm = one_norm(n, nrhs, &g, n);
    let anorm = one_norm(m, n, a, lda);
    let xnorm = one_norm(n, nrhs, x, ldx).maxr(T::Real::one());
    gnorm / (anorm * anorm * xnorm * eps * T::Real::from_usize(m.max(n)))
}

/// One-norm of a [`Mat`].
pub fn mat_norm1<T: Scalar>(a: &Mat<T>) -> T::Real {
    one_norm(a.nrows(), a.ncols(), a.as_slice(), a.lda())
}

/// Infinity-norm condition helper shared by the report binaries:
/// `‖·‖` selector on a [`Mat`].
pub fn mat_norm<T: Scalar>(a: &Mat<T>, norm: Norm) -> T::Real {
    match norm {
        Norm::One => mat_norm1(a),
        Norm::Inf => mat_norm1(&a.conj_transpose()),
        Norm::Fro => a.norm_fro(),
        Norm::Max => a.norm_max(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use la_core::mat;

    #[test]
    fn exact_solution_has_tiny_ratio() {
        let a: Mat<f64> = mat![[2.0, 0.0], [0.0, 4.0]];
        let b: Mat<f64> = mat![[2.0], [8.0]];
        let x: Mat<f64> = mat![[1.0], [2.0]];
        assert_eq!(solve_ratio(&a, &x, &b), 0.0);
    }

    #[test]
    fn wrong_solution_has_huge_ratio() {
        let a: Mat<f64> = mat![[2.0, 0.0], [0.0, 4.0]];
        let b: Mat<f64> = mat![[2.0], [8.0]];
        let x: Mat<f64> = mat![[1.5], [2.0]];
        assert!(solve_ratio(&a, &x, &b) > 1e12);
    }

    #[test]
    fn identity_is_orthogonal() {
        let q: Mat<f64> = Mat::identity(5);
        assert_eq!(orthogonality_ratio(5, 5, q.as_slice(), 5), 0.0);
    }

    #[test]
    fn eig_ratio_diagonal() {
        let a: Mat<f64> = mat![[3.0, 0.0], [0.0, -1.0]];
        let z: Mat<f64> = mat![[0.0, 1.0], [1.0, 0.0]];
        let w = [-1.0, 3.0];
        assert_eq!(eig_ratio(&a, &z, &w), 0.0);
    }
}
